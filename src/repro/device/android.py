"""Android device model.

:class:`AndroidDevice` ties together the battery, CPU, screen, radio and
package-manager sub-models and turns their state into an instantaneous
current draw — the quantity the (emulated) Monsoon samples.  It also runs a
one-hertz accounting tick that drains the battery (or counts bypass charge)
and records CPU utilisation samples, which is where the Figure 4 device-CPU
CDFs come from.

The device additionally hosts the scrcpy *server* process used by device
mirroring.  Its cost model — a few percent of CPU that grows with screen
activity, the hardware H.264 encoder rail, and the WiFi uplink used to ship
encoded frames to the controller — is what produces the mirroring overheads
reported in Figures 2, 3 and 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.device.apps import InstalledApp, PackageManager
from repro.device.battery import Battery, BatteryConnection
from repro.device.cpu import CpuModel
from repro.device.profiles import SAMSUNG_J7_DUO, DeviceHardwareProfile
from repro.device.radio import NetworkInterfaceModel, RadioTechnology
from repro.device.screen import Screen
from repro.simulation.entity import Entity, SimulationContext
from repro.simulation.process import PeriodicProcess

#: Name used for the scrcpy server process in CPU accounting.
SCRCPY_PROCESS = "com.genymobile.scrcpy"

#: Name used for the built-in media player process during the video workload.
MEDIA_PLAYER_PROCESS = "com.android.gallery3d:video"


@dataclass
class MirroringServerState:
    """Device-side state of a scrcpy mirroring session."""

    active: bool = False
    bitrate_mbps: float = 1.0
    base_cpu_percent: float = 3.5
    activity_cpu_percent: float = 3.0


@dataclass
class CurrentBreakdown:
    """Per-component decomposition of one instantaneous current reading (mA)."""

    idle: float
    screen: float
    cpu: float
    video_decoder: float
    hw_encoder: float
    wifi: float
    cellular: float
    bluetooth: float
    usb_charge_offset: float
    total: float


class AndroidDevice(Entity):
    """A simulated Android phone wired into a BatteryLab vantage point.

    Parameters
    ----------
    context:
        Shared simulation context.
    serial:
        ADB serial number; also the entity name.
    profile:
        Hardware/power profile.  Defaults to the paper's Samsung J7 Duo.
    accounting_period:
        Period, in seconds, of the battery-drain / CPU-sampling tick.
    """

    def __init__(
        self,
        context: SimulationContext,
        serial: str,
        profile: DeviceHardwareProfile = SAMSUNG_J7_DUO,
        accounting_period: float = 1.0,
        rooted: bool = False,
    ) -> None:
        super().__init__(context, f"device:{serial}")
        if profile.os_name != "android":
            raise ValueError(
                f"AndroidDevice requires an android profile, got {profile.os_name!r}"
            )
        self._serial = serial
        self._profile = profile
        self._rooted = bool(rooted)
        self.battery = Battery(profile.battery_capacity_mah, profile.battery_voltage_v)
        self.cpu = CpuModel(profile.cpu_cores, self.random.child("cpu"))
        self.screen = Screen()
        self.radio = NetworkInterfaceModel()
        self.packages = PackageManager()
        self._video_decoder_active = False
        self._bluetooth_links = 0
        self._usb_connected = False
        self._usb_powered = False
        self._mirroring = MirroringServerState()
        self._bypass_supply_mah = 0.0
        self._measurement_noise_fraction = 0.02
        self._accounting = PeriodicProcess(
            context.scheduler,
            accounting_period,
            self._accounting_tick,
            label=f"{self.name}:accounting",
        )
        self._accounting.start(initial_delay=accounting_period)

    # -- identity -------------------------------------------------------------
    @property
    def serial(self) -> str:
        return self._serial

    @property
    def profile(self) -> DeviceHardwareProfile:
        return self._profile

    @property
    def rooted(self) -> bool:
        return self._rooted

    @property
    def os_version(self) -> str:
        return self._profile.os_version

    @property
    def api_level(self) -> int:
        return self._profile.api_level

    # -- connectivity ---------------------------------------------------------
    def connect_usb(self, powered: bool = True) -> None:
        """Plug the device into the controller's USB hub."""
        self._usb_connected = True
        self._usb_powered = bool(powered)
        self.battery.set_charging(self._usb_powered)

    def disconnect_usb(self) -> None:
        self._usb_connected = False
        self._usb_powered = False
        self.battery.set_charging(False)

    def set_usb_power(self, powered: bool) -> None:
        """(De)activate USB port power (what ``uhubctl`` does on the controller)."""
        if not self._usb_connected and powered:
            raise RuntimeError("cannot power a USB port with no device attached")
        self._usb_powered = bool(powered)
        self.battery.set_charging(self._usb_powered)

    @property
    def usb_connected(self) -> bool:
        return self._usb_connected

    @property
    def usb_powered(self) -> bool:
        return self._usb_powered

    def connect_wifi(self, ssid: str) -> None:
        self.radio.enable(RadioTechnology.WIFI, ssid=ssid)

    def disconnect_wifi(self) -> None:
        self.radio.disable(RadioTechnology.WIFI)

    def connect_cellular(self) -> None:
        self.radio.enable(RadioTechnology.CELLULAR)

    def disconnect_cellular(self) -> None:
        self.radio.disable(RadioTechnology.CELLULAR)

    def attach_bluetooth_link(self) -> None:
        self._bluetooth_links += 1

    def detach_bluetooth_link(self) -> None:
        if self._bluetooth_links == 0:
            raise RuntimeError("no Bluetooth link to detach")
        self._bluetooth_links -= 1

    @property
    def bluetooth_links(self) -> int:
        return self._bluetooth_links

    # -- workload hooks -------------------------------------------------------
    def set_video_decoder_active(self, active: bool) -> None:
        self._video_decoder_active = bool(active)

    @property
    def video_decoder_active(self) -> bool:
        return self._video_decoder_active

    def install_app(self, app: InstalledApp) -> None:
        self.packages.install(app)

    # -- mirroring server -----------------------------------------------------
    def start_mirroring_server(self, bitrate_mbps: float = 1.0) -> None:
        """Start the on-device scrcpy server (requires API >= 21)."""
        if not self._profile.supports_scrcpy():
            raise RuntimeError(
                f"{self._profile.model} (API {self._profile.api_level}) does not support scrcpy"
            )
        if bitrate_mbps <= 0:
            raise ValueError(f"bitrate must be positive, got {bitrate_mbps!r}")
        self._mirroring.active = True
        self._mirroring.bitrate_mbps = float(bitrate_mbps)
        self.log("scrcpy server started", bitrate_mbps=bitrate_mbps)

    def stop_mirroring_server(self) -> None:
        self._mirroring.active = False
        self.cpu.clear_demand(SCRCPY_PROCESS)
        self.log("scrcpy server stopped")

    @property
    def mirroring_active(self) -> bool:
        return self._mirroring.active

    @property
    def mirroring_bitrate_mbps(self) -> float:
        return self._mirroring.bitrate_mbps

    def mirroring_stream_mbps(self) -> float:
        """Uplink throughput of the mirroring stream right now.

        scrcpy only ships frames when the screen content changes, so the
        effective bitrate scales with screen activity up to the configured cap.
        """
        if not self._mirroring.active:
            return 0.0
        activity = self.screen.activity_fraction()
        # Even a static screen generates keyframes at a low rate; with any
        # meaningful activity the encoder runs close to its configured cap,
        # which is what bounds the paper's ~32 MB upload per ~7 minute test.
        effective = self._mirroring.bitrate_mbps * max(0.35, min(1.0, 0.55 + activity))
        return effective

    def _mirroring_cpu_percent(self) -> float:
        if not self._mirroring.active:
            return 0.0
        activity = self.screen.activity_fraction()
        return self._mirroring.base_cpu_percent + self._mirroring.activity_cpu_percent * activity

    # -- power model ----------------------------------------------------------
    def refresh_demands(self) -> None:
        """Fold app-process demands into the CPU, screen and radio models.

        Called before every current reading and accounting tick so that the
        power model always reflects the live workload state.
        """
        total_screen_fps = 0.0
        has_foreground = False
        for process in self.packages.running_processes():
            self.cpu.set_demand(process.package, process.cpu_percent)
            if process.foreground:
                has_foreground = True
                total_screen_fps += process.screen_fps
        # Launching an app wakes the screen; with nothing in the foreground the
        # display times out, which is how automated tests run between workloads.
        if has_foreground and not self.screen.on:
            self.screen.turn_on()
        elif not has_foreground and self.screen.on:
            self.screen.turn_off()
        for package in list(self.cpu.process_names):
            if package == SCRCPY_PROCESS:
                continue
            if not self.packages.is_running(package):
                self.cpu.clear_demand(package)
        if self.screen.on:
            self.screen.set_update_rate(total_screen_fps)
        # scrcpy CPU demand depends on the freshly computed screen activity.
        if self._mirroring.active:
            self.cpu.set_demand(SCRCPY_PROCESS, self._mirroring_cpu_percent())
        # Radio throughput: foreground + background app traffic plus the
        # mirroring uplink, all carried over the default route.
        app_mbps = sum(p.network_mbps for p in self.packages.running_processes())
        stream_mbps = self.mirroring_stream_mbps()
        route = self.radio.default_route
        for technology in (RadioTechnology.WIFI, RadioTechnology.CELLULAR):
            if self.radio.is_enabled(technology):
                mbps = (app_mbps + stream_mbps) if technology is route else 0.0
                self.radio.set_throughput(technology, mbps)

    def current_breakdown(self) -> CurrentBreakdown:
        """Instantaneous current decomposition, without measurement noise."""
        self.refresh_demands()
        profile = self._profile
        idle = profile.idle_current_ma
        screen = 0.0
        if self.screen.on:
            screen = profile.screen_on_current_ma + profile.screen_brightness_coeff_ma * (
                self.screen.brightness - self.screen.reference_brightness
            )
            screen = max(screen, 0.0)
        cpu = self.cpu.total_demand() * profile.cpu_current_ma_per_percent
        video = profile.video_decoder_current_ma if self._video_decoder_active else 0.0
        encoder = profile.hw_encoder_current_ma if self._mirroring.active else 0.0
        wifi = 0.0
        if self.radio.is_enabled(RadioTechnology.WIFI):
            wifi = (
                profile.wifi_idle_current_ma
                + profile.wifi_active_current_ma_per_mbps
                * self.radio.throughput(RadioTechnology.WIFI)
            )
        cellular = 0.0
        if self.radio.is_enabled(RadioTechnology.CELLULAR):
            cellular = (
                profile.cellular_idle_current_ma
                + profile.cellular_active_current_ma_per_mbps
                * self.radio.throughput(RadioTechnology.CELLULAR)
            )
        bluetooth = profile.bluetooth_active_current_ma * self._bluetooth_links
        gross = idle + screen + cpu + video + encoder + wifi + cellular + bluetooth
        usb_offset = 0.0
        if self._usb_powered:
            # USB supplies the device (and charges the battery): the external
            # meter sees the draw collapse, which is exactly why the paper
            # avoids ADB-over-USB during measurements.
            usb_offset = -min(gross, profile.usb_charge_current_ma)
        total = max(gross + usb_offset, 0.0)
        return CurrentBreakdown(
            idle=idle,
            screen=screen,
            cpu=cpu,
            video_decoder=video,
            hw_encoder=encoder,
            wifi=wifi,
            cellular=cellular,
            bluetooth=bluetooth,
            usb_charge_offset=usb_offset,
            total=total,
        )

    def instantaneous_current_ma(self, with_noise: bool = True) -> float:
        """Current drawn from the supply (battery or monitor) right now, in mA."""
        total = self.current_breakdown().total
        if with_noise and total > 0:
            total *= self.random.clipped_normal(1.0, self._measurement_noise_fraction, low=0.8)
        return total

    # -- accounting -----------------------------------------------------------
    def _accounting_tick(self, timestamp: float) -> None:
        period = self._accounting.period
        current = self.instantaneous_current_ma(with_noise=True)
        if self.battery.connection is BatteryConnection.INTERNAL:
            if self._usb_powered:
                self.battery.charge(self._profile.usb_charge_current_ma * 0.5, period)
            self.battery.drain(current, period)
        elif self.battery.connection is BatteryConnection.BYPASS:
            self._bypass_supply_mah += current * period / 3600.0
        self.cpu.sample(timestamp)

    @property
    def bypass_supply_mah(self) -> float:
        """Charge supplied by the power monitor while in battery bypass."""
        return self._bypass_supply_mah

    def reset_bypass_supply(self) -> None:
        self._bypass_supply_mah = 0.0

    @property
    def accounting(self) -> PeriodicProcess:
        return self._accounting

    # -- dumpsys-style status -------------------------------------------------
    def dumpsys_battery(self) -> Dict[str, object]:
        status = self.battery.status()
        return {
            "level": round(status.level_percent, 1),
            "voltage_mv": int(status.voltage_v * 1000),
            "status": "charging" if status.charging else "discharging",
            "connection": status.connection.value,
            "capacity_mah": status.capacity_mah,
        }

    def dumpsys_cpuinfo(self) -> Dict[str, object]:
        sample = self.cpu.last_sample()
        per_process: Dict[str, float] = dict(sample.per_process_percent) if sample else {}
        total = sample.total_percent if sample else self.cpu.total_demand()
        return {"total_percent": round(total, 2), "per_process": per_process}

    def netstats(self) -> Dict[str, int]:
        wifi = self.radio.counters(RadioTechnology.WIFI)
        cell = self.radio.counters(RadioTechnology.CELLULAR)
        return {
            "wifi_rx_bytes": wifi.rx_bytes,
            "wifi_tx_bytes": wifi.tx_bytes,
            "cell_rx_bytes": cell.rx_bytes,
            "cell_tx_bytes": cell.tx_bytes,
        }

    def cpu_utilisation_series(self) -> List[float]:
        return self.cpu.utilisation_series()

    def summary(self) -> Dict[str, object]:
        """Compact status dictionary used by the access server job logs."""
        return {
            "serial": self._serial,
            "model": self._profile.model,
            "os": f"{self._profile.os_name} {self._profile.os_version}",
            "api_level": self._profile.api_level,
            "battery_percent": round(self.battery.level_percent, 1),
            "battery_connection": self.battery.connection.value,
            "screen_on": self.screen.on,
            "mirroring": self._mirroring.active,
            "usb_powered": self._usb_powered,
            "wifi": self.radio.is_enabled(RadioTechnology.WIFI),
            "cellular": self.radio.is_enabled(RadioTechnology.CELLULAR),
        }
