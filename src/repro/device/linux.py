"""Laptop and IoT device models.

The paper's conclusion notes that "while we focus on mobile devices there is
no fundamental constraint which would not allow BatteryLab to support
laptops or IoT devices".  This module adds those device classes so a vantage
point can host them alongside phones:

* :class:`LinuxDevice` — a generic Linux machine (laptop or single-board IoT
  node) with a battery (optional for mains-assisted IoT nodes), CPU, WiFi
  radio, an optional display panel and a set of *services* standing in for
  the app processes of a phone;
* automation happens over SSH-style service control rather than ADB — the
  :meth:`LinuxDevice.run_command` surface covers the handful of operations
  an experiment script needs (start/stop services, read sensors, power
  settings).

Power accounting mirrors the Android model: every component contributes a
current at the device's supply voltage, the monitor (or relay) samples the
total, and a one-hertz tick drains the battery or counts bypass charge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.device.apps import InstalledApp, PackageManager
from repro.device.battery import Battery, BatteryConnection
from repro.device.cpu import CpuModel
from repro.device.radio import NetworkInterfaceModel, RadioTechnology
from repro.device.screen import Screen
from repro.simulation.entity import Entity, SimulationContext
from repro.simulation.process import PeriodicProcess


@dataclass(frozen=True)
class LinuxDeviceProfile:
    """Hardware/power description of a Linux test device.

    ``battery_capacity_mah`` of zero means the device has no battery at all
    (a mains-powered IoT node): it can still be measured through the monitor
    but never runs from stored charge.
    """

    model: str
    kind: str  # "laptop" or "iot"
    cpu_cores: int
    battery_capacity_mah: float
    supply_voltage_v: float
    idle_current_ma: float
    cpu_current_ma_per_percent: float
    display_current_ma: float
    wifi_idle_current_ma: float
    wifi_active_current_ma_per_mbps: float
    usb_charge_current_ma: float
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def has_battery(self) -> bool:
        return self.battery_capacity_mah > 0

    @property
    def has_display(self) -> bool:
        return self.display_current_ma > 0


THINKPAD_X250 = LinuxDeviceProfile(
    model="ThinkPad X250",
    kind="laptop",
    cpu_cores=4,
    battery_capacity_mah=6200.0,
    supply_voltage_v=11.4,
    idle_current_ma=380.0,
    cpu_current_ma_per_percent=14.0,
    display_current_ma=260.0,
    wifi_idle_current_ma=12.0,
    wifi_active_current_ma_per_mbps=9.0,
    usb_charge_current_ma=0.0,
)
"""A laptop-class profile (battery measured at the pack's 11.4 V)."""


RASPBERRY_PI_ZERO_W = LinuxDeviceProfile(
    model="Raspberry Pi Zero W",
    kind="iot",
    cpu_cores=1,
    battery_capacity_mah=0.0,
    supply_voltage_v=5.0,
    idle_current_ma=120.0,
    cpu_current_ma_per_percent=1.6,
    display_current_ma=0.0,
    wifi_idle_current_ma=8.0,
    wifi_active_current_ma_per_mbps=20.0,
    usb_charge_current_ma=0.0,
)
"""A battery-less IoT node powered (and measured) through its 5 V supply."""


class LinuxDeviceError(RuntimeError):
    """Raised for unsupported operations (e.g. draining a battery-less node)."""


class LinuxDevice(Entity):
    """A laptop or IoT node attached to a BatteryLab vantage point.

    The device deliberately mirrors the attachment surface of
    :class:`~repro.device.android.AndroidDevice` (``serial``,
    ``instantaneous_current_ma``, USB/WiFi hooks, a ``battery`` when one
    exists) so the relay circuit, USB hub and measurement sessions work
    unchanged; what differs is the automation surface (:meth:`run_command`,
    services) and the absence of ADB, scrcpy and Bluetooth input.
    """

    def __init__(
        self,
        context: SimulationContext,
        serial: str,
        profile: LinuxDeviceProfile = THINKPAD_X250,
        accounting_period: float = 1.0,
    ) -> None:
        super().__init__(context, f"device:{serial}")
        self._serial = serial
        self._profile = profile
        self.cpu = CpuModel(profile.cpu_cores, self.random.child("cpu"))
        self.radio = NetworkInterfaceModel()
        self.services = PackageManager()
        self.battery: Optional[Battery] = (
            Battery(profile.battery_capacity_mah, profile.supply_voltage_v)
            if profile.has_battery
            else None
        )
        self.display: Optional[Screen] = Screen() if profile.has_display else None
        self._usb_connected = False
        self._usb_powered = False
        self._mains_powered = not profile.has_battery
        self._bypass_supply_mah = 0.0
        self._accounting = PeriodicProcess(
            context.scheduler,
            accounting_period,
            self._accounting_tick,
            label=f"{self.name}:accounting",
        )
        self._accounting.start(initial_delay=accounting_period)

    # -- identity --------------------------------------------------------------------
    @property
    def serial(self) -> str:
        return self._serial

    @property
    def profile(self) -> LinuxDeviceProfile:
        return self._profile

    @property
    def kind(self) -> str:
        return self._profile.kind

    # -- attachment hooks (same surface the hub/relay/session expect) ------------------
    def connect_usb(self, powered: bool = True) -> None:
        self._usb_connected = True
        self._usb_powered = bool(powered)

    def disconnect_usb(self) -> None:
        self._usb_connected = False
        self._usb_powered = False

    def set_usb_power(self, powered: bool) -> None:
        if not self._usb_connected and powered:
            raise RuntimeError("cannot power a USB port with no device attached")
        self._usb_powered = bool(powered)

    @property
    def usb_connected(self) -> bool:
        return self._usb_connected

    @property
    def usb_powered(self) -> bool:
        return self._usb_powered

    def connect_wifi(self, ssid: str) -> None:
        self.radio.enable(RadioTechnology.WIFI, ssid=ssid)

    def disconnect_wifi(self) -> None:
        self.radio.disable(RadioTechnology.WIFI)

    @property
    def mains_powered(self) -> bool:
        return self._mains_powered

    def set_mains_powered(self, powered: bool) -> None:
        """Plug/unplug a laptop's charger (IoT nodes are always mains powered)."""
        if not self._profile.has_battery and not powered:
            raise LinuxDeviceError(
                f"{self._profile.model} has no battery and cannot run unplugged"
            )
        self._mains_powered = bool(powered)

    # -- services (the Linux analogue of app processes) ----------------------------------
    def install_service(self, name: str, description: str = "") -> None:
        self.services.install(InstalledApp(package=name, label=description or name, category="service"))

    def start_service(self, name: str, cpu_percent: float = 0.0, network_mbps: float = 0.0):
        process = self.services.launch(name)
        process.set_activity(cpu_percent=cpu_percent, network_mbps=network_mbps)
        return process

    def stop_service(self, name: str) -> None:
        self.services.stop(name, ignore_missing=True)

    def run_command(self, command: str) -> str:
        """Tiny SSH-style command surface used by automation scripts.

        Supported commands: ``uptime``, ``sensors``, ``systemctl list``,
        ``systemctl start <svc> [cpu] [mbps]``, ``systemctl stop <svc>``,
        ``display on|off``.
        """
        tokens = command.split()
        if not tokens:
            raise LinuxDeviceError("empty command")
        if tokens[0] == "uptime":
            return f"up {self.now:.0f} seconds, load {self.cpu.total_demand() / 100:.2f}"
        if tokens[0] == "sensors":
            return f"current: {self.instantaneous_current_ma(with_noise=False):.1f} mA"
        if tokens[0] == "display" and self.display is not None and len(tokens) == 2:
            if tokens[1] == "on":
                self.display.turn_on()
            elif tokens[1] == "off":
                self.display.turn_off()
            else:
                raise LinuxDeviceError("usage: display <on|off>")
            return ""
        if tokens[0] == "systemctl":
            if len(tokens) >= 2 and tokens[1] == "list":
                return "\n".join(self.services.installed_packages())
            if len(tokens) >= 3 and tokens[1] == "start":
                cpu = float(tokens[3]) if len(tokens) > 3 else 5.0
                mbps = float(tokens[4]) if len(tokens) > 4 else 0.0
                self.start_service(tokens[2], cpu_percent=cpu, network_mbps=mbps)
                return f"started {tokens[2]}"
            if len(tokens) >= 3 and tokens[1] == "stop":
                self.stop_service(tokens[2])
                return f"stopped {tokens[2]}"
        raise LinuxDeviceError(f"unsupported command {command!r}")

    # -- power model ------------------------------------------------------------------------
    def refresh_demands(self) -> None:
        for process in self.services.running_processes():
            self.cpu.set_demand(process.package, process.cpu_percent)
        for name in list(self.cpu.process_names):
            if not self.services.is_running(name):
                self.cpu.clear_demand(name)
        total_mbps = sum(p.network_mbps for p in self.services.running_processes())
        if self.radio.is_enabled(RadioTechnology.WIFI):
            self.radio.set_throughput(RadioTechnology.WIFI, total_mbps)

    def instantaneous_current_ma(self, with_noise: bool = True) -> float:
        """Current drawn from the measured supply (battery, monitor or mains)."""
        self.refresh_demands()
        profile = self._profile
        total = profile.idle_current_ma
        total += self.cpu.total_demand() * profile.cpu_current_ma_per_percent
        if self.display is not None and self.display.on:
            total += profile.display_current_ma
        if self.radio.is_enabled(RadioTechnology.WIFI):
            total += (
                profile.wifi_idle_current_ma
                + profile.wifi_active_current_ma_per_mbps
                * self.radio.throughput(RadioTechnology.WIFI)
            )
        if with_noise and total > 0:
            total *= self.random.clipped_normal(1.0, 0.02, low=0.85, high=1.15)
        return total

    def _accounting_tick(self, timestamp: float) -> None:
        period = self._accounting.period
        current = self.instantaneous_current_ma(with_noise=True)
        if self.battery is not None and self.battery.connection is BatteryConnection.INTERNAL:
            if not self._mains_powered:
                self.battery.drain(current, period)
        elif self.battery is not None and self.battery.connection is BatteryConnection.BYPASS:
            self._bypass_supply_mah += current * period / 3600.0
        self.cpu.sample(timestamp)

    @property
    def bypass_supply_mah(self) -> float:
        return self._bypass_supply_mah

    def summary(self) -> Dict[str, object]:
        return {
            "serial": self._serial,
            "model": self._profile.model,
            "kind": self._profile.kind,
            "battery_percent": round(self.battery.level_percent, 1) if self.battery else None,
            "mains_powered": self._mains_powered,
            "services": self.services.installed_packages(),
        }
