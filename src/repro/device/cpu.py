"""Device CPU accounting.

Figure 4 of the paper reports CDFs of device CPU utilisation per browser and
Figure 4/5 attribute the mirroring overhead to an extra ~5% CPU on the
device.  The :class:`CpuModel` tracks per-process demand contributions and
produces a noisy total utilisation sample each time it is read, mimicking
``dumpsys cpuinfo`` style sampling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.simulation.random import SeededRandom


@dataclass
class CpuSample:
    """One CPU utilisation observation."""

    timestamp: float
    total_percent: float
    per_process_percent: Dict[str, float]


class CpuModel:
    """Tracks CPU demand contributed by named processes.

    Each process registers a *demand* in percentage points of total CPU.
    Reading utilisation adds bounded multiplicative noise per process so the
    resulting distribution has realistic spread, while the median stays at
    the configured demand (which is what the paper's Figure 4 reports).
    """

    def __init__(
        self,
        cores: int,
        random: SeededRandom,
        baseline_percent: float = 2.0,
        noise_fraction: float = 0.18,
    ) -> None:
        if cores <= 0:
            raise ValueError(f"cores must be positive, got {cores!r}")
        self._cores = int(cores)
        self._random = random
        self._baseline_percent = float(baseline_percent)
        self._noise_fraction = float(noise_fraction)
        self._demands: Dict[str, float] = {}
        self._samples: List[CpuSample] = []

    @property
    def cores(self) -> int:
        return self._cores

    @property
    def baseline_percent(self) -> float:
        return self._baseline_percent

    @property
    def process_names(self) -> List[str]:
        return sorted(self._demands)

    # -- demand management ----------------------------------------------------
    def set_demand(self, process: str, percent: float) -> None:
        """Set the CPU demand of ``process`` (0 removes it)."""
        if percent < 0:
            raise ValueError(f"CPU demand must be non-negative, got {percent!r}")
        if percent == 0:
            self._demands.pop(process, None)
        else:
            self._demands[process] = float(percent)

    def clear_demand(self, process: str) -> None:
        self._demands.pop(process, None)

    def demand(self, process: str) -> float:
        return self._demands.get(process, 0.0)

    def total_demand(self) -> float:
        """Sum of configured demands plus the OS baseline (no noise)."""
        return self._baseline_percent + sum(self._demands.values())

    # -- sampling -------------------------------------------------------------
    def sample(self, timestamp: float) -> CpuSample:
        """Draw one noisy utilisation observation and record it."""
        per_process: Dict[str, float] = {}
        total = self._baseline_percent * self._random.clipped_normal(1.0, 0.25, low=0.2)
        for process, demand in sorted(self._demands.items()):
            observed = demand * self._random.clipped_normal(
                1.0, self._noise_fraction, low=0.05
            )
            per_process[process] = observed
            total += observed
        total = min(total, 100.0)
        record = CpuSample(
            timestamp=timestamp, total_percent=total, per_process_percent=per_process
        )
        self._samples.append(record)
        return record

    @property
    def samples(self) -> List[CpuSample]:
        return list(self._samples)

    def utilisation_series(self) -> List[float]:
        """All recorded total-utilisation observations, in time order."""
        return [sample.total_percent for sample in self._samples]

    def reset_samples(self) -> None:
        self._samples.clear()

    def last_sample(self) -> Optional[CpuSample]:
        return self._samples[-1] if self._samples else None
