"""Mobile device substrate.

BatteryLab measures real phones; this package replaces them with a
component-level device model whose instantaneous current draw is the sum of
per-component power models (screen, SoC/CPU, radio, video decoder, the
scrcpy mirroring server, and an idle floor).  The model exposes the same
control surfaces the real platform uses:

* an :class:`~repro.device.adb.AdbServer` speaking a simplified ADB protocol
  over USB, WiFi or Bluetooth transports,
* a battery that can be placed in *bypass* so a power monitor supplies the
  device instead (the relay experiment of Section 3.2/4.1),
* per-process CPU accounting so device-side CPU CDFs (Figure 4) can be
  reproduced,
* app/package management used by the browser-automation workloads.

The headline entry point is :class:`~repro.device.android.AndroidDevice`;
:class:`~repro.device.ios.IOSDevice` models the iOS support discussed in the
paper (no ADB, automation via Bluetooth keyboard only).
"""

from repro.device.adb import AdbCommandError, AdbConnection, AdbServer, AdbTransport
from repro.device.android import AndroidDevice
from repro.device.apps import AppProcess, InstalledApp, PackageManager
from repro.device.battery import Battery, BatteryConnection
from repro.device.cpu import CpuModel
from repro.device.ios import IOSDevice
from repro.device.linux import (
    LinuxDevice,
    LinuxDeviceProfile,
    RASPBERRY_PI_ZERO_W,
    THINKPAD_X250,
)
from repro.device.profiles import DeviceHardwareProfile, SAMSUNG_J7_DUO, PIXEL_3A, IPHONE_8
from repro.device.radio import NetworkInterfaceModel, RadioTechnology
from repro.device.screen import Screen

__all__ = [
    "AdbCommandError",
    "AdbConnection",
    "AdbServer",
    "AdbTransport",
    "AndroidDevice",
    "AppProcess",
    "InstalledApp",
    "PackageManager",
    "Battery",
    "BatteryConnection",
    "CpuModel",
    "IOSDevice",
    "LinuxDevice",
    "LinuxDeviceProfile",
    "RASPBERRY_PI_ZERO_W",
    "THINKPAD_X250",
    "DeviceHardwareProfile",
    "SAMSUNG_J7_DUO",
    "PIXEL_3A",
    "IPHONE_8",
    "NetworkInterfaceModel",
    "RadioTechnology",
    "Screen",
]
