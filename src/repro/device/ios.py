"""iOS device model.

The paper focuses on Android but sketches iOS support: no ADB and no scrcpy,
so automation happens through the Bluetooth keyboard channel and mirroring
through AirPlay.  :class:`IOSDevice` shares the power model with
:class:`~repro.device.android.AndroidDevice` concepts but deliberately omits
the ADB server and rejects scrcpy, so platform code has to take the
OS-agnostic code paths (exactly the constraint §3.3 describes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.device.apps import InstalledApp, PackageManager
from repro.device.battery import Battery, BatteryConnection
from repro.device.cpu import CpuModel
from repro.device.profiles import IPHONE_8, DeviceHardwareProfile
from repro.device.radio import NetworkInterfaceModel, RadioTechnology
from repro.device.screen import Screen
from repro.simulation.entity import Entity, SimulationContext
from repro.simulation.process import PeriodicProcess


@dataclass
class AirPlayState:
    """AirPlay screen-mirroring session state (the iOS analogue of scrcpy)."""

    active: bool = False
    bitrate_mbps: float = 1.5


class IOSDevice(Entity):
    """A simulated iPhone/iPad attached to a vantage point.

    Compared to :class:`AndroidDevice` the iOS model:

    * has no ADB server — automation must use the Bluetooth keyboard channel
      or a pre-built XCTest bundle;
    * mirrors via AirPlay rather than scrcpy;
    * never exposes root.
    """

    def __init__(
        self,
        context: SimulationContext,
        udid: str,
        profile: DeviceHardwareProfile = IPHONE_8,
        accounting_period: float = 1.0,
    ) -> None:
        super().__init__(context, f"device:{udid}")
        if profile.os_name != "ios":
            raise ValueError(f"IOSDevice requires an ios profile, got {profile.os_name!r}")
        self._udid = udid
        self._profile = profile
        self.battery = Battery(profile.battery_capacity_mah, profile.battery_voltage_v)
        self.cpu = CpuModel(profile.cpu_cores, self.random.child("cpu"))
        self.screen = Screen()
        self.radio = NetworkInterfaceModel()
        self.packages = PackageManager()
        self._airplay = AirPlayState()
        self._bluetooth_links = 0
        self._usb_connected = False
        self._usb_powered = False
        self._bypass_supply_mah = 0.0
        self._accounting = PeriodicProcess(
            context.scheduler,
            accounting_period,
            self._accounting_tick,
            label=f"{self.name}:accounting",
        )
        self._accounting.start(initial_delay=accounting_period)

    @property
    def udid(self) -> str:
        return self._udid

    @property
    def serial(self) -> str:
        """Alias so vantage-point code can treat Android and iOS devices uniformly."""
        return self._udid

    @property
    def profile(self) -> DeviceHardwareProfile:
        return self._profile

    @property
    def rooted(self) -> bool:
        return False

    # -- connectivity ---------------------------------------------------------
    def connect_usb(self, powered: bool = True) -> None:
        self._usb_connected = True
        self._usb_powered = bool(powered)
        self.battery.set_charging(self._usb_powered)

    def disconnect_usb(self) -> None:
        self._usb_connected = False
        self._usb_powered = False
        self.battery.set_charging(False)

    def set_usb_power(self, powered: bool) -> None:
        if not self._usb_connected and powered:
            raise RuntimeError("cannot power a USB port with no device attached")
        self._usb_powered = bool(powered)
        self.battery.set_charging(self._usb_powered)

    @property
    def usb_connected(self) -> bool:
        return self._usb_connected

    @property
    def usb_powered(self) -> bool:
        return self._usb_powered

    def connect_wifi(self, ssid: str) -> None:
        self.radio.enable(RadioTechnology.WIFI, ssid=ssid)

    def connect_cellular(self) -> None:
        self.radio.enable(RadioTechnology.CELLULAR)

    def attach_bluetooth_link(self) -> None:
        self._bluetooth_links += 1

    def detach_bluetooth_link(self) -> None:
        if self._bluetooth_links == 0:
            raise RuntimeError("no Bluetooth link to detach")
        self._bluetooth_links -= 1

    @property
    def bluetooth_links(self) -> int:
        return self._bluetooth_links

    # -- mirroring ------------------------------------------------------------
    def start_mirroring_server(self, bitrate_mbps: float = 1.5) -> None:
        """Start AirPlay screen mirroring to the controller."""
        if bitrate_mbps <= 0:
            raise ValueError(f"bitrate must be positive, got {bitrate_mbps!r}")
        self._airplay.active = True
        self._airplay.bitrate_mbps = float(bitrate_mbps)

    def stop_mirroring_server(self) -> None:
        self._airplay.active = False
        self.cpu.clear_demand("airplayd")

    @property
    def mirroring_active(self) -> bool:
        return self._airplay.active

    def install_app(self, app: InstalledApp) -> None:
        self.packages.install(app)

    # -- power model ----------------------------------------------------------
    def refresh_demands(self) -> None:
        total_screen_fps = 0.0
        has_foreground = False
        for process in self.packages.running_processes():
            self.cpu.set_demand(process.package, process.cpu_percent)
            if process.foreground:
                has_foreground = True
                total_screen_fps += process.screen_fps
        if has_foreground and not self.screen.on:
            self.screen.turn_on()
        elif not has_foreground and self.screen.on:
            self.screen.turn_off()
        if self.screen.on:
            self.screen.set_update_rate(total_screen_fps)
        if self._airplay.active:
            activity = self.screen.activity_fraction()
            self.cpu.set_demand("airplayd", 4.0 + 3.0 * activity)
        app_mbps = sum(p.network_mbps for p in self.packages.running_processes())
        stream = 0.0
        if self._airplay.active:
            stream = self._airplay.bitrate_mbps * max(
                0.12, min(1.0, 0.25 + self.screen.activity_fraction())
            )
        route = self.radio.default_route
        for technology in (RadioTechnology.WIFI, RadioTechnology.CELLULAR):
            if self.radio.is_enabled(technology):
                mbps = (app_mbps + stream) if technology is route else 0.0
                self.radio.set_throughput(technology, mbps)

    def instantaneous_current_ma(self, with_noise: bool = True) -> float:
        self.refresh_demands()
        profile = self._profile
        total = profile.idle_current_ma
        if self.screen.on:
            total += profile.screen_on_current_ma + profile.screen_brightness_coeff_ma * (
                self.screen.brightness - self.screen.reference_brightness
            )
        total += self.cpu.total_demand() * profile.cpu_current_ma_per_percent
        if self._airplay.active:
            total += profile.hw_encoder_current_ma
        if self.radio.is_enabled(RadioTechnology.WIFI):
            total += (
                profile.wifi_idle_current_ma
                + profile.wifi_active_current_ma_per_mbps
                * self.radio.throughput(RadioTechnology.WIFI)
            )
        if self.radio.is_enabled(RadioTechnology.CELLULAR):
            total += (
                profile.cellular_idle_current_ma
                + profile.cellular_active_current_ma_per_mbps
                * self.radio.throughput(RadioTechnology.CELLULAR)
            )
        total += profile.bluetooth_active_current_ma * self._bluetooth_links
        if self._usb_powered:
            total = max(total - profile.usb_charge_current_ma, 0.0)
        if with_noise and total > 0:
            total *= self.random.clipped_normal(1.0, 0.02, low=0.8)
        return total

    def _accounting_tick(self, timestamp: float) -> None:
        period = self._accounting.period
        current = self.instantaneous_current_ma(with_noise=True)
        if self.battery.connection is BatteryConnection.INTERNAL:
            if self._usb_powered:
                self.battery.charge(self._profile.usb_charge_current_ma * 0.5, period)
            self.battery.drain(current, period)
        elif self.battery.connection is BatteryConnection.BYPASS:
            self._bypass_supply_mah += current * period / 3600.0
        self.cpu.sample(timestamp)

    @property
    def bypass_supply_mah(self) -> float:
        return self._bypass_supply_mah

    def summary(self) -> Dict[str, object]:
        return {
            "udid": self._udid,
            "model": self._profile.model,
            "os": f"{self._profile.os_name} {self._profile.os_version}",
            "battery_percent": round(self.battery.level_percent, 1),
            "battery_connection": self.battery.connection.value,
            "screen_on": self.screen.on,
            "mirroring": self._airplay.active,
        }
