"""Installed applications and running app processes.

BatteryLab's demonstration study drives real browser apps through ADB
(``am start``, ``input swipe`` and friends).  This module provides the
device-side half of that interaction:

* :class:`InstalledApp` — an entry in the package manager, optionally with a
  *behaviour* object (e.g. a browser model from :mod:`repro.workloads`) that
  reacts to launches, intents and input events;
* :class:`AppProcess` — the resource footprint of a running app: CPU demand,
  network throughput and screen update rate, which the device turns into
  current draw;
* :class:`PackageManager` — install / uninstall / clear-data / list, the
  operations exercised by the automation scripts and maintenance jobs
  (e.g. factory reset).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol


class AppBehaviour(Protocol):
    """Hooks a workload model can implement to react to device events."""

    def on_launch(self, process: "AppProcess") -> None:  # pragma: no cover - protocol
        ...

    def on_stop(self, process: "AppProcess") -> None:  # pragma: no cover - protocol
        ...

    def on_intent(self, process: "AppProcess", action: str, data: str) -> None:  # pragma: no cover
        ...

    def on_input(self, process: "AppProcess", event: str) -> None:  # pragma: no cover
        ...


class PackageError(RuntimeError):
    """Raised for unknown packages or invalid package-manager operations."""


@dataclass
class InstalledApp:
    """One entry in the device's package manager."""

    package: str
    label: str
    version: str = "1.0"
    category: str = "app"
    behaviour: Optional[AppBehaviour] = None
    data_bytes: int = 0

    def clear_data(self) -> None:
        self.data_bytes = 0


@dataclass
class AppProcess:
    """Resource footprint of a running application process.

    The numbers here are *demands*; the device model converts them into
    current draw and feeds CPU demand into :class:`repro.device.cpu.CpuModel`.
    """

    package: str
    pid: int
    foreground: bool = False
    cpu_percent: float = 0.0
    network_mbps: float = 0.0
    screen_fps: float = 0.0
    rx_bytes: int = 0
    tx_bytes: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)

    def set_activity(
        self,
        cpu_percent: Optional[float] = None,
        network_mbps: Optional[float] = None,
        screen_fps: Optional[float] = None,
    ) -> None:
        """Update the process's instantaneous resource demands."""
        if cpu_percent is not None:
            if cpu_percent < 0:
                raise ValueError(f"cpu_percent must be non-negative, got {cpu_percent!r}")
            self.cpu_percent = float(cpu_percent)
        if network_mbps is not None:
            if network_mbps < 0:
                raise ValueError(f"network_mbps must be non-negative, got {network_mbps!r}")
            self.network_mbps = float(network_mbps)
        if screen_fps is not None:
            if screen_fps < 0:
                raise ValueError(f"screen_fps must be non-negative, got {screen_fps!r}")
            self.screen_fps = float(screen_fps)

    def account_traffic(self, rx_bytes: int = 0, tx_bytes: int = 0) -> None:
        if rx_bytes < 0 or tx_bytes < 0:
            raise ValueError("traffic byte counts must be non-negative")
        self.rx_bytes += int(rx_bytes)
        self.tx_bytes += int(tx_bytes)

    def idle(self) -> None:
        """Drop all demands to zero (app backgrounded / finished its work)."""
        self.cpu_percent = 0.0
        self.network_mbps = 0.0
        self.screen_fps = 0.0


class PackageManager:
    """Android-style package manager: installed apps plus running processes."""

    def __init__(self) -> None:
        self._installed: Dict[str, InstalledApp] = {}
        self._running: Dict[str, AppProcess] = {}
        self._next_pid = 1000

    # -- installation ---------------------------------------------------------
    def install(self, app: InstalledApp) -> None:
        if app.package in self._installed:
            raise PackageError(f"package {app.package!r} is already installed")
        self._installed[app.package] = app

    def uninstall(self, package: str) -> None:
        self._require_installed(package)
        self.stop(package, ignore_missing=True)
        del self._installed[package]

    def is_installed(self, package: str) -> bool:
        return package in self._installed

    def installed_packages(self) -> List[str]:
        return sorted(self._installed)

    def app(self, package: str) -> InstalledApp:
        self._require_installed(package)
        return self._installed[package]

    def clear_data(self, package: str) -> None:
        """``pm clear`` — wipe app data and stop the app if it is running."""
        self._require_installed(package)
        self.stop(package, ignore_missing=True)
        self._installed[package].clear_data()

    # -- processes ------------------------------------------------------------
    def launch(self, package: str) -> AppProcess:
        """Start (or foreground) an app and return its process."""
        app = self.app(package)
        if package in self._running:
            process = self._running[package]
        else:
            process = AppProcess(package=package, pid=self._next_pid)
            self._next_pid += 1
            self._running[package] = process
            if app.behaviour is not None:
                app.behaviour.on_launch(process)
        for other in self._running.values():
            other.foreground = False
        process.foreground = True
        return process

    def stop(self, package: str, ignore_missing: bool = False) -> None:
        """``am force-stop`` — kill the app's process."""
        process = self._running.pop(package, None)
        if process is None:
            if ignore_missing:
                return
            raise PackageError(f"package {package!r} has no running process")
        app = self._installed.get(package)
        if app is not None and app.behaviour is not None:
            app.behaviour.on_stop(process)

    def is_running(self, package: str) -> bool:
        return package in self._running

    def process(self, package: str) -> AppProcess:
        try:
            return self._running[package]
        except KeyError:
            raise PackageError(f"package {package!r} has no running process") from None

    def running_processes(self) -> List[AppProcess]:
        return list(self._running.values())

    def foreground_process(self) -> Optional[AppProcess]:
        for process in self._running.values():
            if process.foreground:
                return process
        return None

    # -- events ---------------------------------------------------------------
    def deliver_intent(self, package: str, action: str, data: str) -> AppProcess:
        """Deliver an intent (``am start -a <action> -d <data>``), launching if needed."""
        process = self.launch(package)
        app = self.app(package)
        if app.behaviour is not None:
            app.behaviour.on_intent(process, action, data)
        return process

    def deliver_input(self, event: str) -> Optional[AppProcess]:
        """Deliver an input event (scroll, key, text) to the foreground app."""
        process = self.foreground_process()
        if process is None:
            return None
        app = self._installed.get(process.package)
        if app is not None and app.behaviour is not None:
            app.behaviour.on_input(process, event)
        return process

    # -- helpers --------------------------------------------------------------
    def _require_installed(self, package: str) -> None:
        if package not in self._installed:
            raise PackageError(f"package {package!r} is not installed")
