"""Android Debug Bridge (ADB) emulation.

BatteryLab instruments Android devices through ADB over three transports
(Section 3.3): USB (reliable, but its charge current corrupts power
measurements), WiFi (``adb tcpip``, the default during measurements) and
Bluetooth (requires a rooted device).  This module reproduces the command
surface the platform and its automation scripts rely on:

* ``shell dumpsys battery`` / ``shell dumpsys cpuinfo``
* ``shell pm list packages`` / ``pm clear`` / ``am start`` / ``am force-stop``
* ``shell input keyevent|swipe|text`` (the scroll automation of §4.2)
* ``shell settings put`` / ``getprop``
* ``logcat -d``, ``push`` / ``pull``, ``get-state``, ``reboot``

The goal is not byte-level protocol fidelity but behavioural fidelity: every
command the paper's workflow needs exists, enforces the transport rules, and
acts on the simulated device state.
"""

from __future__ import annotations

import enum
import shlex
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.device.android import AndroidDevice
from repro.device.apps import PackageError


class AdbTransport(str, enum.Enum):
    """Transport an ADB connection rides on."""

    USB = "usb"
    WIFI = "wifi"
    BLUETOOTH = "bluetooth"


class AdbError(RuntimeError):
    """Base class for ADB failures."""


class AdbTransportUnavailable(AdbError):
    """The requested transport is not currently usable for this device."""


class AdbCommandError(AdbError):
    """The command is malformed, unsupported, or failed on the device."""


@dataclass
class AdbCommandRecord:
    """Audit record of one executed ADB command (exposed to job logs)."""

    timestamp: float
    transport: AdbTransport
    command: str
    output: str


@dataclass
class _DeviceSideState:
    """Mutable ADB-visible state that is not part of the power model."""

    properties: Dict[str, str] = field(default_factory=dict)
    settings: Dict[str, str] = field(default_factory=dict)
    files: Dict[str, bytes] = field(default_factory=dict)
    logcat: List[str] = field(default_factory=list)
    tcpip_enabled: bool = True
    adb_root: bool = False


class AdbServer:
    """The adbd daemon of one Android device plus the host-side command parser."""

    def __init__(self, device: AndroidDevice) -> None:
        self._device = device
        self._state = _DeviceSideState(
            properties={
                "ro.product.model": device.profile.model,
                "ro.build.version.release": device.profile.os_version,
                "ro.build.version.sdk": str(device.profile.api_level),
                "ro.serialno": device.serial,
            }
        )
        self._history: List[AdbCommandRecord] = []

    @property
    def device(self) -> AndroidDevice:
        return self._device

    @property
    def history(self) -> List[AdbCommandRecord]:
        return list(self._history)

    @property
    def logcat_buffer(self) -> List[str]:
        return list(self._state.logcat)

    def log_to_logcat(self, line: str) -> None:
        self._state.logcat.append(f"{self._device.context.now:10.3f} {line}")

    def write_file(self, path: str, data: bytes) -> None:
        """Place a file on the device (e.g. pre-loading the test mp4 on the sdcard)."""
        self._state.files[path] = bytes(data)

    def read_file(self, path: str) -> bytes:
        try:
            return self._state.files[path]
        except KeyError:
            raise AdbCommandError(f"remote object {path!r} does not exist") from None

    def set_tcpip_enabled(self, enabled: bool) -> None:
        """Toggle ``adb tcpip`` mode (WiFi transport availability)."""
        self._state.tcpip_enabled = bool(enabled)

    # -- transport availability -----------------------------------------------
    def transport_available(self, transport: AdbTransport) -> bool:
        transport = AdbTransport(transport)
        if transport is AdbTransport.USB:
            return self._device.usb_connected and self._device.usb_powered
        if transport is AdbTransport.WIFI:
            from repro.device.radio import RadioTechnology

            return (
                self._state.tcpip_enabled
                and self._device.radio.is_enabled(RadioTechnology.WIFI)
            )
        # ADB-over-Bluetooth needs a rooted device and an active BT link (§3.3).
        return self._device.rooted and self._device.bluetooth_links > 0

    def connect(self, transport: AdbTransport) -> "AdbConnection":
        transport = AdbTransport(transport)
        if not self.transport_available(transport):
            raise AdbTransportUnavailable(
                f"ADB transport {transport.value!r} is not available for device "
                f"{self._device.serial!r}"
            )
        return AdbConnection(self, transport)

    # -- command execution ----------------------------------------------------
    def execute(self, command: str, transport: AdbTransport) -> str:
        """Run one ADB command string and return its stdout."""
        if not self.transport_available(transport):
            raise AdbTransportUnavailable(
                f"ADB transport {transport.value!r} dropped for device {self._device.serial!r}"
            )
        tokens = shlex.split(command)
        if not tokens:
            raise AdbCommandError("empty ADB command")
        output = self._dispatch(tokens)
        record = AdbCommandRecord(
            timestamp=self._device.context.now,
            transport=AdbTransport(transport),
            command=command,
            output=output,
        )
        self._history.append(record)
        return output

    # -- dispatch -------------------------------------------------------------
    def _dispatch(self, tokens: List[str]) -> str:
        head = tokens[0]
        if head == "shell":
            if len(tokens) < 2:
                raise AdbCommandError("shell requires a command")
            return self._shell(tokens[1:])
        if head == "logcat":
            return "\n".join(self._state.logcat)
        if head == "get-state":
            return "device"
        if head == "reboot":
            self.log_to_logcat("system rebooting")
            return ""
        if head == "root":
            if not self._device.rooted:
                raise AdbCommandError("adbd cannot run as root in production builds")
            self._state.adb_root = True
            return "restarting adbd as root"
        if head == "push":
            if len(tokens) != 3:
                raise AdbCommandError("push requires <local> <remote>")
            self._state.files[tokens[2]] = f"<pushed from {tokens[1]}>".encode("utf-8")
            return f"{tokens[1]}: 1 file pushed"
        if head == "pull":
            if len(tokens) < 2:
                raise AdbCommandError("pull requires <remote>")
            data = self.read_file(tokens[1])
            return f"{tokens[1]}: 1 file pulled ({len(data)} bytes)"
        raise AdbCommandError(f"unsupported adb command {head!r}")

    def _shell(self, tokens: List[str]) -> str:
        head = tokens[0]
        handlers = {
            "dumpsys": self._shell_dumpsys,
            "pm": self._shell_pm,
            "am": self._shell_am,
            "input": self._shell_input,
            "settings": self._shell_settings,
            "getprop": self._shell_getprop,
            "setprop": self._shell_setprop,
            "ls": self._shell_ls,
            "rm": self._shell_rm,
            "screencap": self._shell_screencap,
            "svc": self._shell_svc,
            "echo": lambda args: " ".join(args),
        }
        handler = handlers.get(head)
        if handler is None:
            raise AdbCommandError(f"unsupported shell command {head!r}")
        return handler(tokens[1:])

    def _shell_dumpsys(self, args: List[str]) -> str:
        if not args:
            raise AdbCommandError("dumpsys requires a service name")
        service = args[0]
        if service == "battery":
            status = self._device.dumpsys_battery()
            return "\n".join(f"  {key}: {value}" for key, value in sorted(status.items()))
        if service == "cpuinfo":
            info = self._device.dumpsys_cpuinfo()
            lines = [f"  TOTAL: {info['total_percent']}%"]
            for process, percent in sorted(info["per_process"].items()):
                lines.append(f"  {percent:.1f}% {process}")
            return "\n".join(lines)
        if service == "netstats":
            stats = self._device.netstats()
            return "\n".join(f"  {key}: {value}" for key, value in sorted(stats.items()))
        raise AdbCommandError(f"unknown dumpsys service {service!r}")

    def _shell_pm(self, args: List[str]) -> str:
        if not args:
            raise AdbCommandError("pm requires a sub-command")
        sub = args[0]
        if sub == "list" and len(args) >= 2 and args[1] == "packages":
            return "\n".join(f"package:{p}" for p in self._device.packages.installed_packages())
        if sub == "clear":
            if len(args) != 2:
                raise AdbCommandError("pm clear requires a package name")
            try:
                self._device.packages.clear_data(args[1])
            except PackageError as exc:
                raise AdbCommandError(str(exc)) from exc
            self.log_to_logcat(f"pm cleared data for {args[1]}")
            return "Success"
        raise AdbCommandError(f"unsupported pm sub-command {sub!r}")

    def _shell_am(self, args: List[str]) -> str:
        if not args:
            raise AdbCommandError("am requires a sub-command")
        sub = args[0]
        if sub == "start":
            return self._am_start(args[1:])
        if sub == "force-stop":
            if len(args) != 2:
                raise AdbCommandError("am force-stop requires a package name")
            self._device.packages.stop(args[1], ignore_missing=True)
            self.log_to_logcat(f"force-stopped {args[1]}")
            return ""
        raise AdbCommandError(f"unsupported am sub-command {sub!r}")

    def _am_start(self, args: List[str]) -> str:
        action: Optional[str] = None
        data: Optional[str] = None
        component: Optional[str] = None
        index = 0
        while index < len(args):
            flag = args[index]
            if flag == "-a":
                action = args[index + 1]
                index += 2
            elif flag == "-d":
                data = args[index + 1]
                index += 2
            elif flag == "-n":
                component = args[index + 1]
                index += 2
            else:
                raise AdbCommandError(f"unsupported am start flag {flag!r}")
        if component is None:
            raise AdbCommandError("am start requires -n <package/activity>")
        package = component.split("/", 1)[0]
        try:
            if action is not None and data is not None:
                self._device.packages.deliver_intent(package, action, data)
            else:
                self._device.packages.launch(package)
        except PackageError as exc:
            raise AdbCommandError(str(exc)) from exc
        self.log_to_logcat(f"am start {component} action={action} data={data}")
        return f"Starting: Intent {{ cmp={component} }}"

    def _shell_input(self, args: List[str]) -> str:
        if not args:
            raise AdbCommandError("input requires an event type")
        event = " ".join(args)
        process = self._device.packages.deliver_input(event)
        target = process.package if process is not None else "<no foreground app>"
        self.log_to_logcat(f"input {event} -> {target}")
        return ""

    def _shell_settings(self, args: List[str]) -> str:
        if len(args) >= 4 and args[0] == "put":
            self._state.settings[f"{args[1]}.{args[2]}"] = args[3]
            return ""
        if len(args) >= 3 and args[0] == "get":
            return self._state.settings.get(f"{args[1]}.{args[2]}", "null")
        raise AdbCommandError("settings supports 'put <ns> <key> <value>' and 'get <ns> <key>'")

    def _shell_getprop(self, args: List[str]) -> str:
        if not args:
            return "\n".join(
                f"[{key}]: [{value}]" for key, value in sorted(self._state.properties.items())
            )
        return self._state.properties.get(args[0], "")

    def _shell_setprop(self, args: List[str]) -> str:
        if len(args) != 2:
            raise AdbCommandError("setprop requires <key> <value>")
        self._state.properties[args[0]] = args[1]
        return ""

    def _shell_ls(self, args: List[str]) -> str:
        prefix = args[0] if args else "/"
        matches = sorted(path for path in self._state.files if path.startswith(prefix))
        return "\n".join(matches)

    def _shell_rm(self, args: List[str]) -> str:
        if not args:
            raise AdbCommandError("rm requires a path")
        removed = self._state.files.pop(args[-1], None)
        if removed is None:
            raise AdbCommandError(f"rm: {args[-1]}: No such file or directory")
        return ""

    def _shell_screencap(self, args: List[str]) -> str:
        path = args[-1] if args else "/sdcard/screen.png"
        self._state.files[path] = b"<png>"
        return ""

    def _shell_svc(self, args: List[str]) -> str:
        if len(args) >= 2 and args[0] == "wifi":
            if args[1] == "enable":
                self._device.connect_wifi(self._device.radio.wifi_ssid or "batterylab")
                return ""
            if args[1] == "disable":
                self._device.disconnect_wifi()
                return ""
        if len(args) >= 2 and args[0] == "data":
            if args[1] == "enable":
                self._device.connect_cellular()
                return ""
            if args[1] == "disable":
                self._device.disconnect_cellular()
                return ""
        raise AdbCommandError(f"unsupported svc command {' '.join(args)!r}")


class AdbConnection:
    """A live ADB session pinned to one transport.

    Connections account for the power cost of the transport: a USB session
    keeps the port powered (charging the device and spoiling measurements),
    while a Bluetooth session holds a BT link open.
    """

    def __init__(self, server: AdbServer, transport: AdbTransport) -> None:
        self._server = server
        self._transport = AdbTransport(transport)
        self._open = True
        if self._transport is AdbTransport.BLUETOOTH:
            server.device.attach_bluetooth_link()

    @property
    def transport(self) -> AdbTransport:
        return self._transport

    @property
    def open(self) -> bool:
        return self._open

    @property
    def device_serial(self) -> str:
        return self._server.device.serial

    def execute(self, command: str) -> str:
        if not self._open:
            raise AdbError("connection is closed")
        return self._server.execute(command, self._transport)

    def shell(self, command: str) -> str:
        return self.execute(f"shell {command}")

    def close(self) -> None:
        if not self._open:
            return
        self._open = False
        if self._transport is AdbTransport.BLUETOOTH:
            self._server.device.detach_bluetooth_link()

    def __enter__(self) -> "AdbConnection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
