"""Battery and battery-bypass model.

In BatteryLab each phone's voltage terminal is wired through a relay that
switches between the phone's own battery and the Monsoon's ``Vout``
connector ("battery bypass", Section 3.2).  The :class:`Battery` here tracks
state of charge and exposes the same connection states the relay toggles
between, so the relay circuit and the power monitor can be exercised without
hardware.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class BatteryConnection(str, enum.Enum):
    """How the device's power terminals are currently wired."""

    INTERNAL = "internal"
    """Direct connection between the phone and its own battery."""

    BYPASS = "bypass"
    """Battery disconnected; the power monitor's Vout supplies the device."""

    DISCONNECTED = "disconnected"
    """Neither the battery nor a monitor is connected (device is off)."""


class BatteryError(RuntimeError):
    """Raised for invalid battery operations (e.g. draining a bypassed battery)."""


@dataclass
class BatteryStatus:
    """Snapshot returned by ``dumpsys battery``-style queries."""

    connection: BatteryConnection
    level_percent: float
    charge_mah: float
    capacity_mah: float
    voltage_v: float
    charging: bool


class Battery:
    """State-of-charge tracking for a (possibly removable) phone battery.

    Parameters
    ----------
    capacity_mah:
        Nominal capacity.
    voltage_v:
        Nominal voltage.
    initial_level:
        Initial state of charge as a fraction in ``(0, 1]``.
    """

    def __init__(self, capacity_mah: float, voltage_v: float, initial_level: float = 1.0) -> None:
        if capacity_mah <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_mah!r}")
        if voltage_v <= 0:
            raise ValueError(f"voltage must be positive, got {voltage_v!r}")
        if not 0.0 < initial_level <= 1.0:
            raise ValueError(f"initial_level must be in (0, 1], got {initial_level!r}")
        self._capacity_mah = float(capacity_mah)
        self._voltage_v = float(voltage_v)
        self._charge_mah = float(capacity_mah) * float(initial_level)
        self._connection = BatteryConnection.INTERNAL
        self._charging = False
        self._total_discharged_mah = 0.0

    # -- wiring ---------------------------------------------------------------
    @property
    def connection(self) -> BatteryConnection:
        return self._connection

    def set_connection(self, connection: BatteryConnection) -> None:
        self._connection = BatteryConnection(connection)

    # -- electrical properties ------------------------------------------------
    @property
    def capacity_mah(self) -> float:
        return self._capacity_mah

    @property
    def voltage_v(self) -> float:
        return self._voltage_v

    @property
    def charge_mah(self) -> float:
        return self._charge_mah

    @property
    def level(self) -> float:
        """State of charge as a fraction in ``[0, 1]``."""
        return self._charge_mah / self._capacity_mah

    @property
    def level_percent(self) -> float:
        return 100.0 * self.level

    @property
    def total_discharged_mah(self) -> float:
        """Cumulative charge drawn from this battery (not from a bypass supply)."""
        return self._total_discharged_mah

    @property
    def charging(self) -> bool:
        return self._charging

    def set_charging(self, charging: bool) -> None:
        self._charging = bool(charging)

    # -- charge accounting ----------------------------------------------------
    def drain(self, current_ma: float, duration_s: float) -> float:
        """Remove charge corresponding to ``current_ma`` flowing for ``duration_s``.

        Returns the charge removed in mAh.  Draining is only legal when the
        battery is actually wired to the device (``INTERNAL``); in bypass the
        monitor supplies the device and the battery holds its charge.
        """
        if current_ma < 0:
            raise ValueError(f"current must be non-negative, got {current_ma!r}")
        if duration_s < 0:
            raise ValueError(f"duration must be non-negative, got {duration_s!r}")
        if self._connection is not BatteryConnection.INTERNAL:
            raise BatteryError(
                f"cannot drain battery while connection is {self._connection.value!r}"
            )
        removed = current_ma * duration_s / 3600.0
        removed = min(removed, self._charge_mah)
        self._charge_mah -= removed
        self._total_discharged_mah += removed
        return removed

    def charge(self, current_ma: float, duration_s: float) -> float:
        """Add charge (USB power).  Returns the charge added in mAh."""
        if current_ma < 0:
            raise ValueError(f"current must be non-negative, got {current_ma!r}")
        if duration_s < 0:
            raise ValueError(f"duration must be non-negative, got {duration_s!r}")
        added = current_ma * duration_s / 3600.0
        added = min(added, self._capacity_mah - self._charge_mah)
        self._charge_mah += added
        return added

    def status(self) -> BatteryStatus:
        return BatteryStatus(
            connection=self._connection,
            level_percent=self.level_percent,
            charge_mah=self._charge_mah,
            capacity_mah=self._capacity_mah,
            voltage_v=self._voltage_v,
            charging=self._charging,
        )
