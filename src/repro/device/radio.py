"""Radio / network interface model.

A device has a WiFi interface (associated with the vantage point
controller's access point) and a cellular interface.  Only one is the
default route at a time — the paper notes that running over WiFi precludes
mobile-network experiments, which is why the Bluetooth keyboard automation
channel exists.  Power draw scales with the instantaneous throughput the
active workload reports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional


class RadioTechnology(str, enum.Enum):
    WIFI = "wifi"
    CELLULAR = "cellular"


class RadioError(RuntimeError):
    """Raised for invalid radio operations (e.g. traffic on a disabled interface)."""


@dataclass
class InterfaceCounters:
    """Cumulative traffic counters, as read from ``/proc/net/dev`` on a real phone."""

    rx_bytes: int = 0
    tx_bytes: int = 0

    def total_bytes(self) -> int:
        return self.rx_bytes + self.tx_bytes


class NetworkInterfaceModel:
    """Tracks per-technology association state, throughput and traffic counters."""

    def __init__(self) -> None:
        self._enabled: Dict[RadioTechnology, bool] = {
            RadioTechnology.WIFI: False,
            RadioTechnology.CELLULAR: False,
        }
        self._counters: Dict[RadioTechnology, InterfaceCounters] = {
            RadioTechnology.WIFI: InterfaceCounters(),
            RadioTechnology.CELLULAR: InterfaceCounters(),
        }
        self._throughput_mbps: Dict[RadioTechnology, float] = {
            RadioTechnology.WIFI: 0.0,
            RadioTechnology.CELLULAR: 0.0,
        }
        self._default_route: Optional[RadioTechnology] = None
        self._wifi_ssid: Optional[str] = None

    # -- association ----------------------------------------------------------
    def enable(self, technology: RadioTechnology, ssid: Optional[str] = None) -> None:
        technology = RadioTechnology(technology)
        self._enabled[technology] = True
        if technology is RadioTechnology.WIFI:
            self._wifi_ssid = ssid
        if self._default_route is None:
            self._default_route = technology

    def disable(self, technology: RadioTechnology) -> None:
        technology = RadioTechnology(technology)
        self._enabled[technology] = False
        self._throughput_mbps[technology] = 0.0
        if technology is RadioTechnology.WIFI:
            self._wifi_ssid = None
        if self._default_route is technology:
            self._default_route = next(
                (tech for tech, on in self._enabled.items() if on), None
            )

    def is_enabled(self, technology: RadioTechnology) -> bool:
        return self._enabled[RadioTechnology(technology)]

    @property
    def wifi_ssid(self) -> Optional[str]:
        return self._wifi_ssid

    @property
    def default_route(self) -> Optional[RadioTechnology]:
        return self._default_route

    def set_default_route(self, technology: RadioTechnology) -> None:
        technology = RadioTechnology(technology)
        if not self._enabled[technology]:
            raise RadioError(f"cannot route over disabled interface {technology.value!r}")
        self._default_route = technology

    # -- traffic --------------------------------------------------------------
    def set_throughput(self, technology: RadioTechnology, mbps: float) -> None:
        """Set the instantaneous throughput seen on an interface."""
        technology = RadioTechnology(technology)
        if mbps < 0:
            raise ValueError(f"throughput must be non-negative, got {mbps!r}")
        if mbps > 0 and not self._enabled[technology]:
            raise RadioError(f"traffic on disabled interface {technology.value!r}")
        self._throughput_mbps[technology] = float(mbps)

    def throughput(self, technology: RadioTechnology) -> float:
        return self._throughput_mbps[RadioTechnology(technology)]

    def total_throughput_mbps(self) -> float:
        return sum(self._throughput_mbps.values())

    def account_traffic(
        self, technology: RadioTechnology, rx_bytes: int = 0, tx_bytes: int = 0
    ) -> None:
        """Add transferred bytes to the cumulative counters."""
        technology = RadioTechnology(technology)
        if rx_bytes < 0 or tx_bytes < 0:
            raise ValueError("traffic byte counts must be non-negative")
        counters = self._counters[technology]
        counters.rx_bytes += int(rx_bytes)
        counters.tx_bytes += int(tx_bytes)

    def counters(self, technology: RadioTechnology) -> InterfaceCounters:
        return self._counters[RadioTechnology(technology)]
