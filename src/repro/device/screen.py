"""Screen model.

The screen matters to BatteryLab in two ways: it is one of the largest
power consumers during the browser and video workloads, and its *update
rate* drives the cost of scrcpy mirroring (the encoder works harder "when
the screen content changes quickly versus, for example, the fixed phone's
home screen", Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ScreenState:
    on: bool
    brightness: float
    update_rate_fps: float


class Screen:
    """Display panel with brightness and an activity (update-rate) signal.

    Parameters
    ----------
    reference_brightness:
        Brightness the hardware profile's ``screen_on_current_ma`` was measured
        at; deviations scale with ``screen_brightness_coeff_ma``.
    max_fps:
        Maximum refresh/update rate the panel can present.
    """

    def __init__(self, reference_brightness: float = 0.5, max_fps: float = 60.0) -> None:
        if not 0.0 < reference_brightness <= 1.0:
            raise ValueError(
                f"reference_brightness must be in (0, 1], got {reference_brightness!r}"
            )
        self._reference_brightness = float(reference_brightness)
        self._max_fps = float(max_fps)
        self._on = False
        self._brightness = reference_brightness
        self._update_rate_fps = 0.0

    @property
    def on(self) -> bool:
        return self._on

    @property
    def brightness(self) -> float:
        return self._brightness

    @property
    def reference_brightness(self) -> float:
        return self._reference_brightness

    @property
    def max_fps(self) -> float:
        return self._max_fps

    @property
    def update_rate_fps(self) -> float:
        """Rate at which the displayed content is currently changing."""
        return self._update_rate_fps if self._on else 0.0

    def turn_on(self) -> None:
        self._on = True

    def turn_off(self) -> None:
        self._on = False
        self._update_rate_fps = 0.0

    def set_brightness(self, brightness: float) -> None:
        if not 0.0 <= brightness <= 1.0:
            raise ValueError(f"brightness must be in [0, 1], got {brightness!r}")
        self._brightness = float(brightness)

    def set_update_rate(self, fps: float) -> None:
        """Set how fast the on-screen content is changing (clamped to panel max)."""
        if fps < 0:
            raise ValueError(f"fps must be non-negative, got {fps!r}")
        self._update_rate_fps = min(float(fps), self._max_fps)

    def activity_fraction(self) -> float:
        """Screen activity normalised to ``[0, 1]`` (drives the mirroring encoder)."""
        if not self._on or self._max_fps == 0:
            return 0.0
        return self._update_rate_fps / self._max_fps

    def state(self) -> ScreenState:
        return ScreenState(
            on=self._on, brightness=self._brightness, update_rate_fps=self.update_rate_fps
        )
